package analysis

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// poolPkgPath is the package providing the free-list Pool the analyzer
// tracks.
const poolPkgPath = "latsim/internal/sim"

// Escapes is poolsafety's exported fact: the parameter indices a
// function stores into a location that outlives the call (a field, an
// element, a global, or an escaping callee). A caller that passes a
// pooled pointer through such a parameter has effectively stored it,
// and must not Put the object while the store stands.
type Escapes struct {
	Params []int `json:"params"`
}

// AFact marks Escapes as a fact type.
func (*Escapes) AFact() {}

// NewPoolsafety returns the poolsafety analyzer: misuse of sim.Pool[T]
// objects. The pool contract (see sim.Pool) is LIFO recycling with no
// poisoning, so every violation silently aliases live state:
//
//   - use after Put: the object may already have been handed out again;
//   - double Put: two future Gets return the same pointer;
//   - Put while the pointer is still stored in a longer-lived field or
//     map (within one function): the stale reference outlives the event.
//
// The analysis is flow-aware within a function body (branches merge
// conservatively; a Put inside one arm poisons the join) but does not
// track aliases or cross-function flows.
//
// Test files are exempt: regression tests (sim's pool_test.go) commit
// the violations on purpose to pin down what misuse does.
func NewPoolsafety() *Analyzer {
	a := &Analyzer{
		Name:      "poolsafety",
		Doc:       "check sim.Pool objects for use-after-Put, double-Put and stores that outlive Put",
		FactTypes: []Fact{(*Escapes)(nil)},
	}
	a.Run = func(pass *Pass) error {
		ec := newEffectsComputer(pass, nil, nil)
		exportEscapes(pass, ec)
		for _, file := range pass.Files {
			if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						ps := &poolState{pass: pass, ec: ec}
						ps.block(fn.Body.List, newPoolFlow())
					}
					return false // nested FuncLits are walked inside block
				}
				return true
			})
		}
		return nil
	}
	return a
}

// exportEscapes publishes an Escapes fact for every function whose
// pointer parameters it stores beyond the call, in declaration order.
func exportEscapes(pass *Pass, ec *effectsComputer) {
	objs := make([]types.Object, 0, len(ec.decls))
	for obj := range ec.decls {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		if e := ec.of(obj); len(e.escapeParams) > 0 {
			pass.ExportObjectFact(obj, &Escapes{Params: sortedKeys(e.escapeParams)})
		}
	}
}

// isPoolType reports whether t is sim.Pool[T] or *sim.Pool[T].
func isPoolType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj != nil && obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == poolPkgPath
}

// poolFlow is the per-path analysis state.
type poolFlow struct {
	// dead maps a pooled object to the position of the Put that freed it.
	dead map[types.Object]token.Pos
	// stores maps a pooled object to the longer-lived locations (printed
	// form of the destination) it is currently stored in.
	stores map[types.Object]map[string]token.Pos
	// terminated is set when the path ends in return/panic/branch.
	terminated bool
}

func newPoolFlow() *poolFlow {
	return &poolFlow{
		dead:   map[types.Object]token.Pos{},
		stores: map[types.Object]map[string]token.Pos{},
	}
}

func (f *poolFlow) clone() *poolFlow {
	g := newPoolFlow()
	for k, v := range f.dead {
		g.dead[k] = v
	}
	for k, m := range f.stores {
		c := map[string]token.Pos{}
		for s, p := range m {
			c[s] = p
		}
		g.stores[k] = c
	}
	return g
}

// merge unions another path's facts into f (conservative join).
func (f *poolFlow) merge(g *poolFlow) {
	if g == nil || g.terminated {
		return
	}
	for k, v := range g.dead {
		if _, ok := f.dead[k]; !ok {
			f.dead[k] = v
		}
	}
	for k, m := range g.stores {
		d := f.stores[k]
		if d == nil {
			d = map[string]token.Pos{}
			f.stores[k] = d
		}
		for s, p := range m {
			d[s] = p
		}
	}
}

type poolState struct {
	pass *Pass
	ec   *effectsComputer
}

// recordEscapes scans e for calls that let a pooled pointer argument
// escape, per the callee's Escapes fact (imported for other packages,
// computed directly for this one), and records each as a live store:
// Put while the store stands is then reported by the existing logic.
func (ps *poolState) recordEscapes(e ast.Expr, f *poolFlow) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		fn, ok := ps.pass.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		var escapes []int
		if fn.Pkg() == ps.pass.Pkg {
			if obj := ps.pass.Info.Uses[id]; obj != nil {
				escapes = sortedKeys(ps.ec.of(obj).escapeParams)
			}
		} else {
			var fact Escapes
			if ps.pass.ImportObjectFact(fn, &fact) {
				escapes = fact.Params
			}
		}
		for _, pi := range escapes {
			if pi >= len(call.Args) {
				continue
			}
			obj := ps.pooledIdent(call.Args[pi])
			if obj == nil {
				continue
			}
			m := f.stores[obj]
			if m == nil {
				m = map[string]token.Pos{}
				f.stores[obj] = m
			}
			m["a location kept by "+calleeName(fn)] = call.Pos()
		}
		return true
	})
}

// block runs the flow over a statement list, mutating and returning f.
func (ps *poolState) block(stmts []ast.Stmt, f *poolFlow) *poolFlow {
	for _, stmt := range stmts {
		if f.terminated {
			// Unreachable code: stop rather than report nonsense.
			return f
		}
		ps.stmt(stmt, f)
	}
	return f
}

func (ps *poolState) stmt(stmt ast.Stmt, f *poolFlow) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if obj, ok := ps.putArg(s.X); ok {
			if _, dead := f.dead[obj]; dead {
				ps.pass.Reportf(s.Pos(), "double Put of pooled object %s (already recycled)", obj.Name())
			}
			// A location still holding the pointer outlives the Put.
			var dests []string
			for dest := range f.stores[obj] {
				dests = append(dests, dest)
			}
			sort.Strings(dests)
			for _, dest := range dests {
				ps.pass.Reportf(s.Pos(), "pooled object %s is recycled while still stored in %s; clear the reference before Put", obj.Name(), dest)
			}
			delete(f.stores, obj)
			f.dead[obj] = s.Pos()
			return
		}
		ps.checkUses(s.X, f)
		ps.recordEscapes(s.X, f)
		if isTerminalCall(s.X) {
			f.terminated = true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			ps.checkUses(rhs, f)
			ps.recordEscapes(rhs, f)
		}
		for i, lhs := range s.Lhs {
			ps.assign(lhs, rhsFor(s.Rhs, i), f)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ps.checkUses(v, f)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ps.stmt(s.Init, f)
		}
		ps.checkUses(s.Cond, f)
		then := ps.block(s.Body.List, f.clone())
		var els *poolFlow
		if s.Else != nil {
			els = f.clone()
			ps.stmt(s.Else, els)
		}
		if s.Else != nil && then.terminated && els.terminated {
			f.terminated = true
			return
		}
		f.merge(then)
		f.merge(els)
	case *ast.ForStmt:
		if s.Init != nil {
			ps.stmt(s.Init, f)
		}
		if s.Cond != nil {
			ps.checkUses(s.Cond, f)
		}
		body := ps.block(s.Body.List, f.clone())
		if s.Post != nil {
			ps.stmt(s.Post, body)
		}
		f.merge(body)
	case *ast.RangeStmt:
		ps.checkUses(s.X, f)
		f.merge(ps.block(s.Body.List, f.clone()))
	case *ast.SwitchStmt:
		if s.Init != nil {
			ps.stmt(s.Init, f)
		}
		if s.Tag != nil {
			ps.checkUses(s.Tag, f)
		}
		ps.caseClauses(s.Body, f)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ps.stmt(s.Init, f)
		}
		ps.caseClauses(s.Body, f)
	case *ast.BlockStmt:
		nested := ps.block(s.List, f.clone())
		f.merge(nested)
		f.terminated = f.terminated || nested.terminated
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ps.checkUses(r, f)
		}
		f.terminated = true
	case *ast.BranchStmt:
		f.terminated = true
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		ps.checkUses(call, f)
	case *ast.LabeledStmt:
		ps.stmt(s.Stmt, f)
	case *ast.SendStmt:
		ps.checkUses(s.Chan, f)
		ps.checkUses(s.Value, f)
	case *ast.IncDecStmt:
		ps.checkUses(s.X, f)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				f.merge(ps.block(cc.Body, f.clone()))
			}
		}
	}
}

// caseClauses joins the arms of a switch body.
func (ps *poolState) caseClauses(body *ast.BlockStmt, f *poolFlow) {
	hasDefault := false
	var exits []*poolFlow
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			ps.checkUses(e, f)
		}
		exits = append(exits, ps.block(cc.Body, f.clone()))
	}
	allTerm := len(exits) > 0
	for _, e := range exits {
		if !e.terminated {
			allTerm = false
		}
	}
	if hasDefault && allTerm {
		f.terminated = true
		return
	}
	for _, e := range exits {
		f.merge(e)
	}
}

// assign processes one LHS <- RHS pair: reviving a reassigned pooled
// variable, recording stores of pooled pointers into longer-lived
// destinations, and clearing previously recorded stores.
func (ps *poolState) assign(lhs ast.Expr, rhs ast.Expr, f *poolFlow) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if obj := ps.pass.ObjectOf(l); obj != nil {
			delete(f.dead, obj) // rebound: the old pointer is gone
			delete(f.stores, obj)
		}
		return
	case *ast.SelectorExpr, *ast.IndexExpr:
		dest := exprString(ps.pass.Fset, lhs)
		// Overwriting a destination clears whatever pooled pointer we
		// recorded there.
		for _, m := range f.stores {
			delete(m, dest)
		}
		// A pooled pointer stored into a field or element of something
		// else survives this event unless cleared before Put.
		if obj := ps.pooledIdent(rhs); obj != nil && !ps.selfStore(l, obj) {
			m := f.stores[obj]
			if m == nil {
				m = map[string]token.Pos{}
				f.stores[obj] = m
			}
			m[dest] = lhs.Pos()
		}
	}
	ps.checkUses(lhs, f)
}

// selfStore reports whether the destination is a field of the pooled
// object itself (x.f = x patterns are self-references, freed together).
func (ps *poolState) selfStore(lhs ast.Expr, obj types.Object) bool {
	for {
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			lhs = l.X
		case *ast.IndexExpr:
			lhs = l.X
		case *ast.Ident:
			return ps.pass.ObjectOf(l) == obj
		default:
			return false
		}
	}
}

// pooledIdent returns the object of rhs if it is an identifier of a
// pointer type produced by a sim.Pool (heuristic: pointer-typed local
// whose type is also the element type of some Pool use is too broad, so
// we only track identifiers that were ever passed to Put/returned by Get
// — approximated by: pointer-typed identifier).
func (ps *poolState) pooledIdent(rhs ast.Expr) types.Object {
	id, ok := rhs.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := ps.pass.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if _, ok := obj.Type().(*types.Pointer); !ok {
		return nil
	}
	return obj
}

// putArg matches `pool.Put(x)` where pool has type sim.Pool and x is a
// plain identifier, returning x's object.
func (ps *poolState) putArg(e ast.Expr) (types.Object, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return nil, false
	}
	if t := ps.pass.TypeOf(sel.X); t == nil || !isPoolType(t) {
		return nil, false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := ps.pass.ObjectOf(id)
	if obj == nil {
		return nil, false
	}
	return obj, true
}

// checkUses reports reads of recycled objects inside e. Uses within
// function literals count: a closure created after Put runs after Put.
func (ps *poolState) checkUses(e ast.Expr, f *poolFlow) {
	if e == nil || len(f.dead) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := ps.pass.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, dead := f.dead[obj]; dead {
			ps.pass.Reportf(id.Pos(), "use of pooled object %s after Put (recycled at line %d)",
				obj.Name(), ps.pass.Fset.Position(f.dead[obj]).Line)
			// Report each object once per path to avoid cascades.
			delete(f.dead, obj)
		}
		return true
	})
}

// rhsFor pairs the i-th LHS with its RHS (nil for multi-value calls).
func rhsFor(rhs []ast.Expr, i int) ast.Expr {
	if len(rhs) == 1 && i > 0 {
		return nil // x, y := f()
	}
	if i < len(rhs) {
		return rhs[i]
	}
	return nil
}

// isTerminalCall reports whether e is a call that never returns.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fun.Sel.Name == "Exit") ||
				(pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"))
		}
	}
	return false
}

// exprString renders an expression for diagnostics and store keys.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	_ = printer.Fprint(&b, fset, e)
	return b.String()
}
