package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// cacheSchema versions the on-disk cache/facts sidecar format; bump on
// any layout change so stale sidecars are ignored, not misread.
const cacheSchema = 1

// Stats reports what one driver run did, for the CLI's -stats flag and
// the CI speedup measurement.
type Stats struct {
	Packages int // in-module packages loaded (targets + dependencies)
	Analyzed int // packages actually analyzed this run
	Cached   int // packages satisfied from the result cache
}

// Runner drives the full suite: it loads the target patterns plus their
// in-module dependency closure, walks the packages in dependency order
// so exported facts are always available to dependents, and (optionally)
// caches each package's facts and diagnostics in a sidecar file keyed on
// the package's export-data hash, so a clean re-run skips every
// unchanged package.
type Runner struct {
	// Dir is the directory patterns are resolved from ("" = current).
	Dir string
	// Analyzers is the suite to apply.
	Analyzers []*Analyzer
	// CacheDir enables the per-package result cache when non-empty.
	CacheDir string
	// Salt is folded into every cache key; the CLI sets it to a digest
	// of its own executable so rebuilding the tool invalidates the
	// cache (analyzer behaviour may have changed).
	Salt string
}

// Run analyzes the patterns and returns the diagnostics of the target
// packages (dependency packages are analyzed for facts only), sorted by
// position.
func (r *Runner) Run(patterns ...string) ([]Diagnostic, Stats, error) {
	pkgs, err := Load(r.Dir, patterns...)
	if err != nil {
		return nil, Stats{}, err
	}
	diags, stats, _, err := r.runLoaded(pkgs)
	return diags, stats, err
}

// runLoaded walks already-loaded packages in their dependency order,
// returning target diagnostics plus the per-package diagnostics map
// (CheckExpectations needs per-package attribution).
func (r *Runner) runLoaded(pkgs []*Package) ([]Diagnostic, Stats, map[string][]Diagnostic, error) {
	stats := Stats{Packages: len(pkgs)}
	allFacts := map[string]*pkgFacts{}
	perPkg := map[string][]Diagnostic{}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var (
			pf  *pkgFacts
			ds  []Diagnostic
			hit bool
		)
		if r.CacheDir != "" {
			pf, ds, hit = r.cacheLoad(pkg)
		}
		if hit {
			stats.Cached++
		} else {
			env := newFactEnv()
			// Topological order guarantees every dependency (direct or
			// transitive) was analyzed first, so exposing all facts
			// accumulated so far gives the pass its full transitive-closure
			// view — the same view vet mode reconstructs from re-exported
			// .vetx documents.
			for ip, f := range allFacts {
				env.imported[basePkgPath(ip)] = f
			}
			var err error
			ds, err = runPackage(pkg, r.Analyzers, env)
			if err != nil {
				return nil, stats, nil, err
			}
			pf = env.out
			stats.Analyzed++
			if r.CacheDir != "" {
				r.cacheStore(pkg, pf, ds)
			}
		}
		allFacts[pkg.Path] = pf
		perPkg[pkg.Path] = ds
		if !pkg.Dep {
			diags = append(diags, ds...)
		}
	}
	Sort(diags)
	return diags, stats, perPkg, nil
}

// Run loads the given package patterns and applies every analyzer to
// every loaded package (dependencies first, exchanging facts), returning
// the target packages' diagnostics sorted by position. It is the
// cache-less convenience form of Runner.Run.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	diags, _, err := (&Runner{Dir: dir, Analyzers: analyzers}).Run(patterns...)
	return diags, err
}

// RunPackage applies the analyzers to one loaded package with no
// interprocedural facts (single-package analyses and tests).
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPackage(pkg, analyzers, newFactEnv())
}

func runPackage(pkg *Package, analyzers []*Analyzer, env *factEnv) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
			env:      env,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// cacheEntry is one package's persisted analysis result.
type cacheEntry struct {
	Schema int          `json:"schema"`
	Key    string       `json:"key"`
	Facts  *pkgFacts    `json:"facts"`
	Diags  []Diagnostic `json:"diags"`
}

// cacheKey keys one package's sidecar: the package's export-data hash
// (which already folds in its sources and its dependencies' hashes),
// the analyzer suite and the runner salt.
func (r *Runner) cacheKey(pkg *Package) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d;salt=%s;pkg=%s;hash=%s;", cacheSchema, r.Salt, pkg.Path, pkg.ExportHash)
	names := make([]string, len(r.Analyzers))
	for i, a := range r.Analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n + ";"))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (r *Runner) cachePath(key string) string {
	return filepath.Join(r.CacheDir, key[:2], key+".json")
}

func (r *Runner) cacheLoad(pkg *Package) (*pkgFacts, []Diagnostic, bool) {
	key := r.cacheKey(pkg)
	data, err := os.ReadFile(r.cachePath(key))
	if err != nil {
		return nil, nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchema || e.Key != key {
		return nil, nil, false
	}
	if e.Facts == nil {
		e.Facts = newPkgFacts()
	} else if e.Facts.Analyzers == nil {
		e.Facts.Analyzers = map[string]map[string]json.RawMessage{}
	}
	return e.Facts, e.Diags, true
}

// cacheStore writes a package's sidecar; failures are ignored (the cache
// is an optimization, never a correctness dependency).
func (r *Runner) cacheStore(pkg *Package, pf *pkgFacts, diags []Diagnostic) {
	key := r.cacheKey(pkg)
	path := r.cachePath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return
	}
	data, err := json.Marshal(cacheEntry{Schema: cacheSchema, Key: key, Facts: pf, Diags: diags})
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o666) == nil {
		_ = os.Rename(tmp, path)
	}
}

// DefaultCacheDir returns the user-level cache directory for the suite
// ("" when the platform reports no cache home).
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "latsimvet")
}

// Sort orders diagnostics by file, line, column, then analyzer name.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
