package analysis

import (
	"fmt"
	"sort"
)

// Run loads the given package patterns and applies every analyzer to
// every loaded package, returning all diagnostics sorted by position.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	Sort(diags)
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then analyzer name.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
