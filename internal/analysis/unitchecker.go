package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// VetCfg is the configuration file the go command hands a -vettool for
// each package unit (the x/tools unitchecker protocol). Only the fields
// this driver consumes are declared.
type VetCfg struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetCfg analyzes the single package unit described by the .cfg file
// written by `go vet -vettool`. The tool must write VetxOutput (the
// facts file) even when it has nothing to say, or the go command
// reports the run as failed. This driver exchanges no facts, so the
// file is a constant placeholder.
func RunVetCfg(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg VetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("latsimvet: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil // dependency pass: facts only, and we have none
	}
	if cfg.Compiler != "gc" && cfg.Compiler != "" {
		return nil, fmt.Errorf("analysis: unsupported compiler %q", cfg.Compiler)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: importMapper{
			imp: importer.ForCompiler(fset, "gc", lookup),
			m:   cfg.ImportMap,
		},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: type-checking %s: %v", cfg.ImportPath, err)
	}
	diags, err := RunPackage(&Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, analyzers)
	if err != nil {
		return nil, err
	}
	Sort(diags)
	return diags, nil
}

// basePkgPath strips the go command's test-variant suffix
// ("pkg [pkg.test]" -> "pkg") so package-keyed configuration matches
// the variants `go vet` feeds through the unitchecker protocol.
func basePkgPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}
