package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// modulePathPrefix identifies this module's packages in vet-mode
// configs: only they are analyzed for facts (stdlib and third-party
// dependencies get an empty facts file and no analysis).
const modulePathPrefix = "latsim"

// VetCfg is the configuration file the go command hands a -vettool for
// each package unit (the x/tools unitchecker protocol). Only the fields
// this driver consumes are declared.
type VetCfg struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetCfg analyzes the single package unit described by the .cfg file
// written by `go vet -vettool`. Facts ride the protocol's .vetx files:
// dependency facts are read from PackageVetx and this unit's exported
// facts are written to VetxOutput (the go command schedules dependency
// units first and caches their outputs, so vet mode gets the same
// interprocedural view as the standalone driver). The tool must write
// VetxOutput even when it has nothing to say, or the go command reports
// the run as failed.
func RunVetCfg(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg VetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %v", cfgPath, err)
	}
	inModule := strings.HasPrefix(basePkgPath(cfg.ImportPath), modulePathPrefix)

	// The .vetx document maps origin package path -> facts. Each unit
	// re-exports everything it imported plus its own facts, so facts
	// reach transitive dependents even though the go command only hands
	// a unit its *direct* imports' vetx files.
	writeFacts := func(doc *factsDoc) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		enc, err := json.MarshalIndent(doc, "", "\t")
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, enc, 0o666)
	}

	// Out-of-module units carry no facts and need no analysis, in
	// facts-only and diagnostic mode alike.
	if !inModule {
		return nil, writeFacts(newFactsDoc())
	}
	if cfg.Compiler != "gc" && cfg.Compiler != "" {
		return nil, fmt.Errorf("analysis: unsupported compiler %q", cfg.Compiler)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeFacts(newFactsDoc())
			}
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: importMapper{
			imp: importer.ForCompiler(fset, "gc", lookup),
			m:   cfg.ImportMap,
		},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeFacts(newFactsDoc())
		}
		return nil, fmt.Errorf("analysis: type-checking %s: %v", cfg.ImportPath, err)
	}

	env := newFactEnv()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // no facts for this dependency
		}
		doc, err := decodeFactsDoc(data)
		if err != nil {
			continue // e.g. a stale placeholder from an older tool
		}
		for path, pf := range doc.Packages {
			env.imported[basePkgPath(path)] = pf
		}
	}

	diags, err := runPackage(&Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, analyzers, env)
	if err != nil {
		return nil, err
	}
	doc := newFactsDoc()
	for path, pf := range env.imported {
		doc.Packages[path] = pf
	}
	doc.Packages[basePkgPath(cfg.ImportPath)] = env.out
	if err := writeFacts(doc); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil // dependency unit: facts only
	}
	Sort(diags)
	return diags, nil
}

// factsDoc is the on-disk .vetx layout: facts keyed by origin package,
// the analyzed unit's own plus re-exports of everything it imported.
type factsDoc struct {
	Schema   int                  `json:"schema"`
	Packages map[string]*pkgFacts `json:"packages"`
}

func newFactsDoc() *factsDoc {
	return &factsDoc{Schema: cacheSchema, Packages: map[string]*pkgFacts{}}
}

func decodeFactsDoc(data []byte) (*factsDoc, error) {
	doc := newFactsDoc()
	if len(data) == 0 {
		return doc, nil
	}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts document: %v", err)
	}
	if doc.Schema != cacheSchema {
		return nil, fmt.Errorf("analysis: facts document schema %d, want %d", doc.Schema, cacheSchema)
	}
	if doc.Packages == nil {
		doc.Packages = map[string]*pkgFacts{}
	}
	return doc, nil
}

// basePkgPath strips the go command's test-variant suffix
// ("pkg [pkg.test]" -> "pkg") so package-keyed configuration matches
// the variants `go vet` feeds through the unitchecker protocol.
func basePkgPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}
