package analysis

import (
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// SchemaAnchor ties a version constant to the serialized types it
// covers: when the shape of any root (or any in-module struct reachable
// from one) changes, the constant must be bumped, because persisted
// documents keyed on the old version no longer decode compatibly.
type SchemaAnchor struct {
	// Pkg is the package declaring the version constant.
	Pkg string
	// Const is the constant's name in that package.
	Const string
	// Key names the anchor in the committed golden ("runner.SchemaVersion").
	Key string
	// Roots are the fully qualified struct types ("pkgpath.Type") whose
	// reachable shape the fingerprint covers.
	Roots []string
}

// DefaultSchemaAnchors cover the repo's cache-serialized documents: the
// runner's result cache (runner.Job keys it, machine.Result fills it)
// and the observability report embedded in cached run outputs.
var DefaultSchemaAnchors = []SchemaAnchor{
	{
		Pkg:   "latsim/internal/runner",
		Const: "SchemaVersion",
		Key:   "runner.SchemaVersion",
		Roots: []string{"latsim/internal/runner.Job", "latsim/internal/machine.Result"},
	},
	{
		Pkg:   "latsim/internal/obs",
		Const: "ReportSchema",
		Key:   "obs.ReportSchema",
		Roots: []string{"latsim/internal/obs.Report"},
	},
}

// ExemptMarker excludes a struct field from the schema fingerprint:
// `//schemaver:exempt <reason>` (a field that never serializes, e.g.
// one excluded by encoding tags). The exemption travels inside the
// exported SchemaShapes fact, so it works across packages even though
// dependents never see the comment.
const ExemptMarker = "//schemaver:exempt"

// SchemaShapes is the package fact carrying the shapes of every struct
// type a package declares, with exempt fields already removed.
type SchemaShapes struct {
	Types map[string]TypeShape `json:"types"`
}

// AFact marks SchemaShapes as a fact type.
func (*SchemaShapes) AFact() {}

// TypeShape is one struct's serialized surface.
type TypeShape struct {
	// Display is the package-name-qualified type name used in the
	// canonical fingerprint text ("machine.Result").
	Display string `json:"display"`
	// Fields lists the struct's fields in declaration order.
	Fields []FieldShape `json:"fields"`
}

// FieldShape is one field of a serialized struct.
type FieldShape struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Tag  string `json:"tag,omitempty"`
	// Refs lists fully qualified in-module struct types this field's
	// type reaches, for the fingerprint's reachability walk.
	Refs []string `json:"refs,omitempty"`
}

// SchemaGolden is the committed fingerprint file.
type SchemaGolden struct {
	Anchors map[string]SchemaRecord `json:"anchors"`
}

// SchemaRecord pins one anchor's version constant and shape fingerprint.
type SchemaRecord struct {
	Version     int64  `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// schemaverGoldenJSON is the committed golden, embedded so the analyzer
// works from any working directory (including `go vet -vettool` runs).
// Regenerate with `latsimvet -schemaver-update`.
//
//go:embed schemaver_golden.json
var schemaverGoldenJSON []byte

// SchemaverGoldenPath is where -schemaver-update writes, relative to
// the module root.
const SchemaverGoldenPath = "internal/analysis/schemaver_golden.json"

// NewSchemaver returns the production schemaver analyzer: every
// cache-serialized type's shape is fingerprinted against the committed
// golden, and a shape change without the matching version-constant bump
// fails the lint.
func NewSchemaver() *Analyzer {
	var golden SchemaGolden
	if err := json.Unmarshal(schemaverGoldenJSON, &golden); err != nil {
		golden = SchemaGolden{}
	}
	return NewSchemaverConfig(DefaultSchemaAnchors, golden, nil)
}

// NewSchemaverCapture returns a schemaver variant that records each
// anchor's current version and fingerprint into capture instead of
// comparing — the `-schemaver-update` half of the workflow.
func NewSchemaverCapture(capture map[string]SchemaRecord) *Analyzer {
	return NewSchemaverConfig(DefaultSchemaAnchors, SchemaGolden{}, capture)
}

// NewSchemaverConfig builds a schemaver analyzer from an explicit
// anchor table and golden (fixtures use their own). When capture is
// non-nil the analyzer records instead of comparing.
func NewSchemaverConfig(anchors []SchemaAnchor, golden SchemaGolden, capture map[string]SchemaRecord) *Analyzer {
	a := &Analyzer{
		Name:      "schemaver",
		Doc:       "fingerprint cache-serialized struct shapes and require a schema-version bump when they change",
		FactTypes: []Fact{(*SchemaShapes)(nil)},
	}
	a.Run = func(pass *Pass) error {
		marks := reportEmptyMarkers(pass, ExemptMarker)
		shapes := computeShapes(pass, marks)
		pass.ExportPackageFact(&SchemaShapes{Types: shapes})
		for _, anc := range anchors {
			if anc.Pkg != basePkgPath(pass.Pkg.Path()) {
				continue
			}
			obj := pass.Pkg.Scope().Lookup(anc.Const)
			cobj, ok := obj.(*types.Const)
			if !ok {
				pass.Reportf(pass.Files[0].Pos(),
					"schema anchor constant %s.%s not found", anc.Pkg, anc.Const)
				continue
			}
			ver, _ := constant.Int64Val(constant.ToInt(cobj.Val()))
			fp := schemaFingerprint(pass, anc.Roots, shapes)
			if capture != nil {
				capture[anc.Key] = SchemaRecord{Version: ver, Fingerprint: fp}
				continue
			}
			rec, ok := golden.Anchors[anc.Key]
			switch {
			case !ok:
				pass.Reportf(cobj.Pos(),
					"no committed schema fingerprint for %s; run `latsimvet -schemaver-update` and commit %s",
					anc.Key, SchemaverGoldenPath)
			case fp != rec.Fingerprint && ver == rec.Version:
				pass.Reportf(cobj.Pos(),
					"serialized schema reachable from %s changed (fingerprint %s, committed %s) without a version bump; stale cached documents would decode against the new shape — bump %s and run `latsimvet -schemaver-update`",
					anc.Key, fp, rec.Fingerprint, anc.Const)
			case fp != rec.Fingerprint:
				pass.Reportf(cobj.Pos(),
					"schema golden is stale for %s (version bumped to %d); run `latsimvet -schemaver-update` to commit fingerprint %s",
					anc.Key, ver, fp)
			case ver != rec.Version:
				pass.Reportf(cobj.Pos(),
					"%s bumped to %d but the serialized schema still matches committed version %d; revert the bump or run `latsimvet -schemaver-update`",
					anc.Const, ver, rec.Version)
			}
		}
		return nil
	}
	return a
}

// computeShapes builds the shape of every package-level struct type in
// the pass's package, dropping unexported and exempt fields (neither
// serializes).
func computeShapes(pass *Pass, marks map[string]map[int]markerAt) map[string]TypeShape {
	shapes := map[string]TypeShape{}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				shape := TypeShape{Display: pass.Pkg.Name() + "." + ts.Name.Name}
				for _, field := range st.Fields.List {
					if suppressed(marks, pass.Fset, field.Pos()) {
						continue // exempt, with a recorded reason
					}
					t := pass.TypeOf(field.Type)
					fs := FieldShape{
						Type: typeDisplay(t),
						Refs: structRefs(t),
					}
					if field.Tag != nil {
						fs.Tag = field.Tag.Value
					}
					if len(field.Names) == 0 {
						// Embedded field: serializes under the type's name.
						name := embeddedName(field.Type)
						if name == "" || !ast.IsExported(name) {
							continue
						}
						fs.Name = name
						shape.Fields = append(shape.Fields, fs)
						continue
					}
					for _, name := range field.Names {
						if !name.IsExported() {
							continue // unexported fields do not serialize
						}
						f := fs
						f.Name = name.Name
						shape.Fields = append(shape.Fields, f)
					}
				}
				shapes[ts.Name.Name] = shape
			}
		}
	}
	return shapes
}

// embeddedName extracts the type name of an embedded field expression.
func embeddedName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.Ident:
			return x.Name
		case *ast.IndexExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// typeDisplay renders a type with package-name qualification, so the
// fingerprint is stable across module moves but still distinguishes
// same-named types from different packages in practice.
func typeDisplay(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// structRefs collects the fully qualified in-module named struct types
// reachable through t's structure (pointers, slices, arrays, maps,
// anonymous structs, and the underlying of in-module named non-structs).
func structRefs(t types.Type) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(t types.Type)
	walk = func(t types.Type) {
		switch x := t.(type) {
		case nil:
		case *types.Pointer:
			walk(x.Elem())
		case *types.Slice:
			walk(x.Elem())
		case *types.Array:
			walk(x.Elem())
		case *types.Map:
			walk(x.Key())
			walk(x.Elem())
		case *types.Struct:
			for i := 0; i < x.NumFields(); i++ {
				walk(x.Field(i).Type())
			}
		case *types.Named:
			pkg := x.Obj().Pkg()
			if pkg == nil || !strings.HasPrefix(basePkgPath(pkg.Path()), modulePathPrefix) {
				return
			}
			full := basePkgPath(pkg.Path()) + "." + x.Obj().Name()
			if seen[full] {
				return
			}
			seen[full] = true
			if _, isStruct := x.Underlying().(*types.Struct); isStruct {
				out = append(out, full)
				return // its own shape covers the fields
			}
			walk(x.Underlying())
		}
	}
	walk(t)
	sort.Strings(out)
	return out
}

// schemaFingerprint renders the canonical text of every struct shape
// reachable from the roots and hashes it. Shapes of other packages come
// from their exported SchemaShapes facts.
func schemaFingerprint(pass *Pass, roots []string, own map[string]TypeShape) string {
	shapeOf := func(full string) (TypeShape, bool) {
		i := strings.LastIndex(full, ".")
		if i < 0 {
			return TypeShape{}, false
		}
		pkg, name := full[:i], full[i+1:]
		if pkg == basePkgPath(pass.Pkg.Path()) {
			s, ok := own[name]
			return s, ok
		}
		var ss SchemaShapes
		if pass.ImportPackageFact(pkg, &ss) {
			s, ok := ss.Types[name]
			return s, ok
		}
		return TypeShape{}, false
	}

	resolved := map[string]TypeShape{}
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		full := queue[0]
		queue = queue[1:]
		if _, done := resolved[full]; done {
			continue
		}
		shape, ok := shapeOf(full)
		if !ok {
			shape = TypeShape{Display: full + "?unresolved"}
		}
		resolved[full] = shape
		for _, f := range shape.Fields {
			queue = append(queue, f.Refs...)
		}
	}

	keys := make([]string, 0, len(resolved))
	for k := range resolved {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return resolved[keys[i]].Display < resolved[keys[j]].Display
	})
	var b strings.Builder
	for _, k := range keys {
		s := resolved[k]
		fmt.Fprintf(&b, "%s{\n", s.Display)
		for _, f := range s.Fields {
			fmt.Fprintf(&b, "\t%s %s %s\n", f.Name, f.Type, f.Tag)
		}
		b.WriteString("}\n")
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])[:16]
}
