package analysis

// All returns the full analyzer suite with production configuration:
// the real pool type, the real nil-guarded hook types, the real
// event-scheduled package lists and the committed schema golden.
// cmd/latsimvet and CI run exactly this.
func All() []*Analyzer {
	return []*Analyzer{
		NewPoolsafety(),
		NewNilsafe(),
		NewSimdet(),
		NewPartition(),
		NewHookpure(),
		NewSchemaver(),
	}
}
