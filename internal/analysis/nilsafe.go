package analysis

import (
	"go/ast"
	"go/types"
)

// DefaultNilsafeTypes are the hook types whose exported methods must be
// callable on a nil receiver (the DESIGN.md §4b zero-perturbation
// contract): the simulator threads plain pointers to these types through
// the hot path and relies on `if r == nil { return }` guards instead of
// interface indirection.
var DefaultNilsafeTypes = []string{
	"latsim/internal/obs.Recorder",
	"latsim/internal/obs/span.Tracer",
	"latsim/internal/obs/span.Span",
	"latsim/internal/check.Checker",
	"latsim/internal/runner.Hooks",
	"latsim/internal/obs/diff.Diff",
}

// UnguardedDeref is nilsafe's exported fact: the method dereferences
// its receiver without an initial nil guard. Calling it on a possibly
// nil receiver is therefore as unsafe as a direct field access, and the
// caller must guard first — including callers in other packages, who
// learn this through the fact rather than the body.
type UnguardedDeref struct{}

// AFact marks UnguardedDeref as a fact type.
func (*UnguardedDeref) AFact() {}

// NewNilsafe returns the nilsafe analyzer for the given fully qualified
// type names ("pkgpath.TypeName"). Every exported pointer-receiver
// method on a listed type must begin with a receiver nil check before it
// reads or writes any receiver field — or calls another method that
// itself dereferences the receiver unguarded (known interprocedurally
// via the UnguardedDeref fact); methods that never touch the receiver's
// fields need no guard.
func NewNilsafe(typeNames ...string) *Analyzer {
	if len(typeNames) == 0 {
		typeNames = DefaultNilsafeTypes
	}
	guarded := map[string]bool{}
	for _, t := range typeNames {
		guarded[t] = true
	}
	a := &Analyzer{
		Name:      "nilsafe",
		Doc:       "check that exported methods on nil-guarded hook types test the receiver before any field access",
		FactTypes: []Fact{(*UnguardedDeref)(nil)},
	}
	a.Run = func(pass *Pass) error {
		// First pass: every method (exported or not) on a guarded type
		// that dereferences its receiver without a guard, published as a
		// fact so callers anywhere treat the call like a field access.
		unguarded := map[types.Object]bool{}
		forEachGuardedMethod(pass, guarded, func(fn *ast.FuncDecl, recvObj types.Object, typeName string) {
			for _, stmt := range fn.Body.List {
				if isNilGuard(pass, stmt, recvObj) {
					return
				}
				if findFieldAccess(pass, stmt, recvObj) != nil {
					obj := pass.Info.Defs[fn.Name]
					unguarded[obj] = true
					pass.ExportObjectFact(obj, &UnguardedDeref{})
					return
				}
			}
		})
		// Second pass: exported methods must guard before any unsafe use.
		forEachGuardedMethod(pass, guarded, func(fn *ast.FuncDecl, recvObj types.Object, typeName string) {
			if fn.Name.IsExported() {
				checkNilGuard(pass, fn, recvObj, typeName, unguarded)
			}
		})
		return nil
	}
	return a
}

// forEachGuardedMethod applies f to every method with a body whose
// pointer receiver names a guarded type.
func forEachGuardedMethod(pass *Pass, guarded map[string]bool, f func(*ast.FuncDecl, types.Object, string)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			recvObj, typeName := receiverInfo(pass, fn)
			if recvObj == nil || !guarded[typeName] {
				continue
			}
			f(fn, recvObj, typeName)
		}
	}
}

// receiverInfo resolves a method's receiver object and the fully
// qualified name of its (pointer-element) type.
func receiverInfo(pass *Pass, fn *ast.FuncDecl) (types.Object, string) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil, "" // unnamed receiver cannot be dereferenced anyway
	}
	name := fn.Recv.List[0].Names[0]
	obj := pass.Info.Defs[name]
	if obj == nil {
		return nil, ""
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return nil, "" // value receivers copy; nil is not a concern
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, ""
	}
	return obj, basePkgPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
}

// checkNilGuard walks the method body statement by statement: a field
// access (or dereference) of the receiver — or a call to a method known
// to dereference it unguarded — before a top-level
// `if recv == nil { return ... }` guard is a violation.
func checkNilGuard(pass *Pass, fn *ast.FuncDecl, recv types.Object, typeName string, unguarded map[types.Object]bool) {
	for _, stmt := range fn.Body.List {
		if isNilGuard(pass, stmt, recv) {
			return // everything below is protected
		}
		if bad := findFieldAccess(pass, stmt, recv); bad != nil {
			pass.Reportf(bad.Pos(),
				"%s.%s accesses receiver %s before nil guard; hook methods must begin with `if %s == nil { return }` (zero-perturbation contract)",
				typeName, fn.Name.Name, recv.Name(), recv.Name())
			return // one report per method
		}
		if bad, callee := findUnguardedCall(pass, stmt, recv, unguarded); bad != nil {
			pass.Reportf(bad.Pos(),
				"%s.%s calls %s, which dereferences the receiver without its own nil guard, before the nil guard; guard %s first (zero-perturbation contract)",
				typeName, fn.Name.Name, callee, recv.Name())
			return
		}
	}
}

// findUnguardedCall returns the first call `recv.m(...)` in stmt whose
// target method dereferences the receiver without a guard — known from
// this package's first pass or, cross-package, from an imported
// UnguardedDeref fact.
func findUnguardedCall(pass *Pass, stmt ast.Stmt, recv types.Object, unguarded map[types.Object]bool) (ast.Node, string) {
	var bad ast.Node
	var name string
	ast.Inspect(stmt, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != recv {
			return true
		}
		callee, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		if unguarded[callee] || pass.ImportObjectFact(callee, &UnguardedDeref{}) {
			bad = call
			name = callee.Name()
		}
		return true
	})
	return bad, name
}

// isNilGuard matches `if recv == nil { ...; return }` (the guarded body
// must leave the function).
func isNilGuard(pass *Pass, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.ObjectOf(id) == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isRecv(bin.X) && isNil(bin.Y)) && !(isNil(bin.X) && isRecv(bin.Y)) {
		return false
	}
	if n := len(ifs.Body.List); n > 0 {
		_, ret := ifs.Body.List[n-1].(*ast.ReturnStmt)
		return ret
	}
	return false
}

// findFieldAccess returns the first expression in stmt that reads a
// field of recv or dereferences it. Method calls on recv are allowed:
// the callee is responsible for its own guard.
func findFieldAccess(pass *Pass, stmt ast.Stmt, recv types.Object) ast.Node {
	var bad ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			id, ok := e.X.(*ast.Ident)
			if !ok || pass.ObjectOf(id) != recv {
				return true
			}
			if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				bad = e
				return false
			}
		case *ast.StarExpr:
			if id, ok := e.X.(*ast.Ident); ok && pass.ObjectOf(id) == recv {
				bad = e
				return false
			}
		}
		return true
	})
	return bad
}
