package analysis

import (
	"go/ast"
	"go/types"
)

// DefaultNilsafeTypes are the hook types whose exported methods must be
// callable on a nil receiver (the DESIGN.md §4b zero-perturbation
// contract): the simulator threads plain pointers to these types through
// the hot path and relies on `if r == nil { return }` guards instead of
// interface indirection.
var DefaultNilsafeTypes = []string{
	"latsim/internal/obs.Recorder",
	"latsim/internal/obs/span.Tracer",
	"latsim/internal/obs/span.Span",
	"latsim/internal/check.Checker",
	"latsim/internal/runner.Hooks",
	"latsim/internal/obs/diff.Diff",
}

// NewNilsafe returns the nilsafe analyzer for the given fully qualified
// type names ("pkgpath.TypeName"). Every exported pointer-receiver
// method on a listed type must begin with a receiver nil check before it
// reads or writes any receiver field; methods that never touch the
// receiver's fields need no guard.
func NewNilsafe(typeNames ...string) *Analyzer {
	if len(typeNames) == 0 {
		typeNames = DefaultNilsafeTypes
	}
	guarded := map[string]bool{}
	for _, t := range typeNames {
		guarded[t] = true
	}
	a := &Analyzer{
		Name: "nilsafe",
		Doc:  "check that exported methods on nil-guarded hook types test the receiver before any field access",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
					continue
				}
				recvObj, typeName := receiverInfo(pass, fn)
				if recvObj == nil || !guarded[typeName] {
					continue
				}
				checkNilGuard(pass, fn, recvObj, typeName)
			}
		}
		return nil
	}
	return a
}

// receiverInfo resolves a method's receiver object and the fully
// qualified name of its (pointer-element) type.
func receiverInfo(pass *Pass, fn *ast.FuncDecl) (types.Object, string) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil, "" // unnamed receiver cannot be dereferenced anyway
	}
	name := fn.Recv.List[0].Names[0]
	obj := pass.Info.Defs[name]
	if obj == nil {
		return nil, ""
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return nil, "" // value receivers copy; nil is not a concern
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, ""
	}
	return obj, basePkgPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
}

// checkNilGuard walks the method body statement by statement: a field
// access (or dereference) of the receiver before a top-level
// `if recv == nil { return ... }` guard is a violation.
func checkNilGuard(pass *Pass, fn *ast.FuncDecl, recv types.Object, typeName string) {
	for _, stmt := range fn.Body.List {
		if isNilGuard(pass, stmt, recv) {
			return // everything below is protected
		}
		if bad := findFieldAccess(pass, stmt, recv); bad != nil {
			pass.Reportf(bad.Pos(),
				"%s.%s accesses receiver %s before nil guard; hook methods must begin with `if %s == nil { return }` (zero-perturbation contract)",
				typeName, fn.Name.Name, recv.Name(), recv.Name())
			return // one report per method
		}
	}
}

// isNilGuard matches `if recv == nil { ...; return }` (the guarded body
// must leave the function).
func isNilGuard(pass *Pass, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && pass.ObjectOf(id) == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isRecv(bin.X) && isNil(bin.Y)) && !(isNil(bin.X) && isRecv(bin.Y)) {
		return false
	}
	if n := len(ifs.Body.List); n > 0 {
		_, ret := ifs.Body.List[n-1].(*ast.ReturnStmt)
		return ret
	}
	return false
}

// findFieldAccess returns the first expression in stmt that reads a
// field of recv or dereferences it. Method calls on recv are allowed:
// the callee is responsible for its own guard.
func findFieldAccess(pass *Pass, stmt ast.Stmt, recv types.Object) ast.Node {
	var bad ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			id, ok := e.X.(*ast.Ident)
			if !ok || pass.ObjectOf(id) != recv {
				return true
			}
			if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				bad = e
				return false
			}
		case *ast.StarExpr:
			if id, ok := e.X.(*ast.Ident); ok && pass.ObjectOf(id) == recv {
				bad = e
				return false
			}
		}
		return true
	})
	return bad
}
