package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// FnEffects is the interprocedural side-effect summary of one function,
// exported as an object fact so dependent packages can reason about
// calls into it without seeing its body. hookpure and partition each
// compute and export these under their own namespace.
type FnEffects struct {
	// Allocs are the heap-allocation sites (make/new/append, escaping
	// composite literals, string building, fmt) not justified by a
	// //hookpure:alloc marker.
	Allocs []EffectSite `json:"allocs,omitempty"`
	// Schedules are calls that enqueue or perturb kernel work
	// (sim.Kernel scheduling, sim.Resource acquisition).
	Schedules []EffectSite `json:"schedules,omitempty"`
	// ModelWrites are writes that land in simulation-model state — the
	// target is reached through a pointer into a model package's type.
	ModelWrites []EffectSite `json:"model_writes,omitempty"`
	// GlobalWrites are writes to package-level variables.
	GlobalWrites []EffectSite `json:"global_writes,omitempty"`
	// MutRecv records that the function writes through its receiver.
	MutRecv bool `json:"mut_recv,omitempty"`
	// MutParams lists parameter indices the function writes through.
	MutParams []int `json:"mut_params,omitempty"`
	// EscapeParams lists parameter indices whose pointer is stored in a
	// location that outlives the call (a field, element, global, or an
	// escaping callee) — the interprocedural half of poolsafety.
	EscapeParams []int `json:"escape_params,omitempty"`
}

// AFact marks FnEffects as a fact type.
func (*FnEffects) AFact() {}

// EffectSite locates and describes one effect for diagnostics.
type EffectSite struct {
	Pos  string `json:"pos"`
	What string `json:"what"`
}

// maxEffectSites bounds each category in the serialized fact: one site
// proves the effect; a few more help diagnostics, cascades do not.
const maxEffectSites = 4

// DefaultModelPackages are the packages whose state is "the simulation"
// for purposes of the hookpure mutation rule: a hook writing through a
// pointer into any of these perturbs the run it observes.
var DefaultModelPackages = []string{
	"latsim/internal/sim",
	"latsim/internal/memsys",
	"latsim/internal/msync",
	"latsim/internal/cpu",
	"latsim/internal/mem",
	"latsim/internal/machine",
	"latsim/internal/stats",
	"latsim/internal/dirset",
	"latsim/internal/config",
}

// effects is the in-package working form of FnEffects, with real
// positions for local reporting.
type effects struct {
	allocs       []localSite
	schedules    []localSite
	modelWrites  []localSite
	globalWrites []localSite
	mutRecv      bool
	mutParams    map[int]bool
	escapeParams map[int]bool
}

type localSite struct {
	pos  token.Pos
	what string
}

func (e *effects) addAlloc(pos token.Pos, what string) { e.allocs = addSite(e.allocs, pos, what) }
func (e *effects) addSchedule(pos token.Pos, what string) {
	e.schedules = addSite(e.schedules, pos, what)
}
func (e *effects) addModel(pos token.Pos, what string) {
	e.modelWrites = addSite(e.modelWrites, pos, what)
}
func (e *effects) addGlobal(pos token.Pos, what string) {
	e.globalWrites = addSite(e.globalWrites, pos, what)
}

func addSite(s []localSite, pos token.Pos, what string) []localSite {
	if len(s) >= maxEffectSites {
		return s
	}
	return append(s, localSite{pos, what})
}

func newEffects() *effects {
	return &effects{mutParams: map[int]bool{}, escapeParams: map[int]bool{}}
}

// fact converts to the serialized form.
func (e *effects) fact(fset *token.FileSet) *FnEffects {
	conv := func(sites []localSite) []EffectSite {
		var out []EffectSite
		for _, s := range sites {
			p := fset.Position(s.pos)
			out = append(out, EffectSite{
				Pos:  fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line),
				What: s.what,
			})
		}
		return out
	}
	return &FnEffects{
		Allocs:       conv(e.allocs),
		Schedules:    conv(e.schedules),
		ModelWrites:  conv(e.modelWrites),
		GlobalWrites: conv(e.globalWrites),
		MutRecv:      e.mutRecv,
		MutParams:    sortedKeys(e.mutParams),
		EscapeParams: sortedKeys(e.escapeParams),
	}
}

func sortedKeys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// effectsComputer computes per-function effects bottom-up within one
// package, consulting imported FnEffects facts for cross-package calls
// and exporting facts for this package's own functions.
type effectsComputer struct {
	pass       *Pass
	modelPkgs  map[string]bool
	allocMarks map[string]map[int]markerAt // //hookpure:alloc suppressions
	decls      map[types.Object]*ast.FuncDecl
	memo       map[types.Object]*effects
	active     map[types.Object]bool
}

func newEffectsComputer(pass *Pass, modelPkgs []string, allocMarks map[string]map[int]markerAt) *effectsComputer {
	ec := &effectsComputer{
		pass:       pass,
		modelPkgs:  map[string]bool{},
		allocMarks: allocMarks,
		decls:      map[types.Object]*ast.FuncDecl{},
		memo:       map[types.Object]*effects{},
		active:     map[types.Object]bool{},
	}
	for _, p := range modelPkgs {
		ec.modelPkgs[p] = true
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := pass.Info.Defs[fn.Name]; obj != nil {
					ec.decls[obj] = fn
				}
			}
		}
	}
	return ec
}

// exportAll computes and exports a FnEffects fact for every function
// declared in the package, in deterministic order.
func (ec *effectsComputer) exportAll() {
	objs := make([]types.Object, 0, len(ec.decls))
	for obj := range ec.decls {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		ec.pass.ExportObjectFact(obj, ec.of(obj).fact(ec.pass.Fset))
	}
}

// of returns the effects of a package-level function by object,
// computing and memoizing on first use. Recursion cycles contribute
// nothing (lint fixpoint: a cycle's effects surface at its entry edges).
func (ec *effectsComputer) of(obj types.Object) *effects {
	if e, ok := ec.memo[obj]; ok {
		return e
	}
	if ec.active[obj] {
		return newEffects()
	}
	decl, ok := ec.decls[obj]
	if !ok {
		return newEffects()
	}
	ec.active[obj] = true
	e := ec.compute(decl)
	delete(ec.active, obj)
	ec.memo[obj] = e
	return e
}

// compute walks one function body.
func (ec *effectsComputer) compute(fn *ast.FuncDecl) *effects {
	eff := newEffects()
	recv, params := funcBindings(ec.pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				ec.checkEscapes(x, recv, params, eff)
				return true
			}
			for _, lhs := range x.Lhs {
				ec.write(lhs, recv, params, eff)
			}
			ec.checkEscapes(x, recv, params, eff)
		case *ast.IncDecStmt:
			ec.write(x.X, recv, params, eff)
		case *ast.CallExpr:
			ec.call(x, recv, params, eff)
		case *ast.CompositeLit:
			switch ec.pass.TypeOf(x).(type) {
			case nil:
			default:
				switch ec.pass.TypeOf(x).Underlying().(type) {
				case *types.Map:
					ec.alloc(x.Pos(), "map literal", eff)
				case *types.Slice:
					ec.alloc(x.Pos(), "slice literal", eff)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					ec.alloc(x.Pos(), "escaping composite literal", eff)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := ec.pass.TypeOf(x); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						ec.alloc(x.Pos(), "string concatenation", eff)
					}
				}
			}
		case *ast.FuncLit:
			ec.alloc(x.Pos(), "function literal (closure allocation)", eff)
			// Keep walking: the closure may run synchronously, so its
			// body's effects are charged to the enclosing function.
		}
		return true
	})
	return eff
}

// alloc records an allocation site unless a //hookpure:alloc marker
// with a reason justifies it.
func (ec *effectsComputer) alloc(pos token.Pos, what string, eff *effects) {
	if suppressed(ec.allocMarks, ec.pass.Fset, pos) {
		return
	}
	eff.addAlloc(pos, what)
}

// write classifies one write target.
func (ec *effectsComputer) write(lhs ast.Expr, recv types.Object, params map[types.Object]int, eff *effects) {
	kind, idx, _ := ec.classify(lhs, recv, params)
	switch kind {
	case tModel:
		eff.addModel(lhs.Pos(), "assignment into model state")
	case tGlobal:
		eff.addGlobal(lhs.Pos(), "write to package-level variable "+rootName(lhs))
	case tRecv:
		eff.mutRecv = true
	case tParam:
		eff.mutParams[idx] = true
	}
}

// checkEscapes records pointer parameters stored into locations that
// outlive the call: any assignment whose destination is not a plain
// local identifier and whose source is a parameter.
func (ec *effectsComputer) checkEscapes(as *ast.AssignStmt, recv types.Object, params map[types.Object]int, eff *effects) {
	for i, rhs := range as.Rhs {
		// Unwrap append(dst, p...) — storing into a slice escapes too.
		exprs := []ast.Expr{rhs}
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				exprs = call.Args
			}
		}
		for _, e := range exprs {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			obj := ec.pass.ObjectOf(id)
			pi, isParam := params[obj]
			if !isParam {
				continue
			}
			if _, ok := obj.Type().(*types.Pointer); !ok {
				continue
			}
			if i < len(as.Lhs) || len(as.Lhs) == 1 {
				lhs := as.Lhs[0]
				if i < len(as.Lhs) {
					lhs = as.Lhs[i]
				}
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					eff.escapeParams[pi] = true
				case *ast.Ident:
					if kind, _, _ := ec.classify(lhs, recv, params); kind == tGlobal {
						eff.escapeParams[pi] = true
					}
				}
			}
		}
	}
}

// target classification kinds.
type targetKind int

const (
	tLocal targetKind = iota
	tRecv
	tParam
	tGlobal
	tModel
)

// classify resolves a write/receiver expression to the owner of the
// memory it designates: the function's receiver, a parameter, a local,
// a package-level variable — or, when the selector chain crosses a
// pointer into a model-package type, the simulation model itself.
func (ec *effectsComputer) classify(e ast.Expr, recv types.Object, params map[types.Object]int) (targetKind, int, types.Object) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			obj := ec.pass.ObjectOf(x)
			if obj == nil {
				return tLocal, 0, nil
			}
			if obj == recv {
				return tRecv, 0, obj
			}
			if i, ok := params[obj]; ok {
				return tParam, i, obj
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == ec.pass.Pkg.Scope() {
				return tGlobal, 0, obj
			}
			return tLocal, 0, obj
		case *ast.SelectorExpr:
			if _, isIdent := x.X.(*ast.Ident); !isIdent && ec.isModelPtr(ec.pass.TypeOf(x.X)) {
				return tModel, 0, nil
			}
			if id, ok := x.X.(*ast.Ident); ok {
				// Root reached: a selector through a *non-root* pointer
				// into model state is a model write even when the root
				// is local (h := n.home(a); h.x = 1).
				obj := ec.pass.ObjectOf(id)
				if obj != nil && obj != recv {
					if _, isParam := params[obj]; !isParam {
						if ec.isModelPtr(obj.Type()) {
							return tModel, 0, obj
						}
					}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			if _, isIdent := x.X.(*ast.Ident); !isIdent && ec.isModelPtr(ec.pass.TypeOf(x.X)) {
				return tModel, 0, nil
			}
			e = x.X
		default:
			return tLocal, 0, nil
		}
	}
}

// isModelPtr reports whether t is a pointer to a named type declared in
// a model package.
func (ec *effectsComputer) isModelPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return ec.modelPkgs[basePkgPath(named.Obj().Pkg().Path())]
}

// call folds a callee's effects into the caller at the call site.
func (ec *effectsComputer) call(call *ast.CallExpr, recv types.Object, params map[types.Object]int, eff *effects) {
	fun := ast.Unparen(call.Fun)
	var calleeID *ast.Ident
	var recvExpr ast.Expr
	switch f := fun.(type) {
	case *ast.Ident:
		calleeID = f
	case *ast.SelectorExpr:
		calleeID = f.Sel
		recvExpr = f.X
	default:
		return // call through a function value: unknown, assumed pure
	}
	obj := ec.pass.Info.Uses[calleeID]
	if obj == nil {
		obj = ec.pass.Info.Defs[calleeID]
	}
	switch o := obj.(type) {
	case *types.Builtin:
		switch o.Name() {
		case "append":
			ec.alloc(call.Pos(), "append", eff)
		case "make":
			ec.alloc(call.Pos(), "make", eff)
		case "new":
			ec.alloc(call.Pos(), "new", eff)
		}
		return
	case *types.TypeName:
		// Conversion: string <-> []byte/[]rune copies.
		if t := ec.pass.TypeOf(call); t != nil {
			switch u := t.Underlying().(type) {
			case *types.Basic:
				if u.Info()&types.IsString != 0 && len(call.Args) == 1 {
					if at := ec.pass.TypeOf(call.Args[0]); at != nil {
						if _, isSlice := at.Underlying().(*types.Slice); isSlice {
							ec.alloc(call.Pos(), "[]byte-to-string conversion", eff)
						}
					}
				}
			case *types.Slice:
				if len(call.Args) == 1 {
					if at := ec.pass.TypeOf(call.Args[0]); at != nil {
						if b, isBasic := at.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
							ec.alloc(call.Pos(), "string-to-slice conversion", eff)
						}
					}
				}
			}
		}
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}

	var callee FnEffects
	known := false
	if fn.Pkg() == ec.pass.Pkg {
		callee = *ec.of(obj).fact(ec.pass.Fset)
		known = true
	} else if ec.pass.ImportObjectFact(fn, &callee) {
		known = true
	} else if fn.Pkg().Path() == "fmt" {
		// The one stdlib package hooks reach for by accident; everything
		// in it formats through reflection and allocates.
		ec.alloc(call.Pos(), "fmt."+fn.Name(), eff)
		return
	}
	if !known {
		return // out-of-module with no fact: assumed pure
	}

	name := calleeName(fn)
	if len(callee.Allocs) > 0 {
		ec.alloc(call.Pos(), fmt.Sprintf("call to %s (%s at %s)", name, callee.Allocs[0].What, callee.Allocs[0].Pos), eff)
	}
	if len(callee.Schedules) > 0 {
		eff.addSchedule(call.Pos(), fmt.Sprintf("call to %s (%s)", name, callee.Schedules[0].What))
	}
	if len(callee.ModelWrites) > 0 {
		eff.addModel(call.Pos(), fmt.Sprintf("call to %s (%s at %s)", name, callee.ModelWrites[0].What, callee.ModelWrites[0].Pos))
	}
	if len(callee.GlobalWrites) > 0 {
		eff.addGlobal(call.Pos(), fmt.Sprintf("call to %s (%s at %s)", name, callee.GlobalWrites[0].What, callee.GlobalWrites[0].Pos))
	}
	if callee.MutRecv {
		if isKernelMethod(fn) {
			// Mutating the kernel or a resource is scheduling no matter
			// how the receiver was reached (field, local, parameter).
			eff.addSchedule(call.Pos(), fmt.Sprintf("call to %s schedules or perturbs kernel work", name))
		} else if recvExpr != nil {
			kind, idx, _ := ec.classify(recvExpr, recv, params)
			switch kind {
			case tModel:
				eff.addModel(call.Pos(), fmt.Sprintf("call to %s mutates model state", name))
			case tGlobal:
				eff.addGlobal(call.Pos(), fmt.Sprintf("call to %s mutates package-level state", name))
			case tRecv:
				eff.mutRecv = true
			case tParam:
				eff.mutParams[idx] = true
			}
		}
	}
	for _, pi := range callee.MutParams {
		if pi >= len(call.Args) {
			continue
		}
		arg := ast.Unparen(call.Args[pi])
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = u.X
		}
		kind, idx, _ := ec.classify(arg, recv, params)
		switch kind {
		case tModel:
			eff.addModel(call.Pos(), fmt.Sprintf("call to %s mutates model state through argument %d", name, pi))
		case tGlobal:
			eff.addGlobal(call.Pos(), fmt.Sprintf("call to %s mutates package-level state through argument %d", name, pi))
		case tRecv:
			eff.mutRecv = true
		case tParam:
			eff.mutParams[idx] = true
		}
	}
}

// isKernelMethod reports whether fn is a method on the simulation
// kernel or one of its resources — mutation there is "scheduling".
func isKernelMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != poolPkgPath {
		return false
	}
	return named.Obj().Name() == "Kernel" || named.Obj().Name() == "Resource"
}

// calleeName renders a function for diagnostics: pkg.F or (pkg.T).M.
func calleeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s.%s).%s", fn.Pkg().Name(), named.Obj().Name(), fn.Name())
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// funcBindings resolves a declaration's receiver object and parameter
// index map.
func funcBindings(pass *Pass, fn *ast.FuncDecl) (types.Object, map[types.Object]int) {
	var recv types.Object
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recv = pass.Info.Defs[fn.Recv.List[0].Names[0]]
	}
	params := map[types.Object]int{}
	i := 0
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = i
				}
				i++
			}
		}
	}
	return recv, params
}

// rootName names the root identifier of an lvalue chain for messages.
func rootName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		default:
			return "?"
		}
	}
}
