package analysis

import (
	"strings"
	"testing"
)

// runGolden checks one analyzer against one fixture package: every
// `// want` comment must be matched by a diagnostic and vice versa.
func runGolden(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	problems, err := CheckExpectations("", []*Analyzer{a}, pattern)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestPoolsafetyGolden(t *testing.T) {
	runGolden(t, NewPoolsafety(), "./testdata/src/poolsafety/a")
}

func TestNilsafeGolden(t *testing.T) {
	runGolden(t, NewNilsafe(
		"latsim/internal/analysis/testdata/src/nilsafe/hooks.Recorder",
		"latsim/internal/analysis/testdata/src/nilsafe/hooks.Tracer",
	), "./testdata/src/nilsafe/hooks")
}

func TestSimdetGolden(t *testing.T) {
	runGolden(t, NewSimdet("latsim/internal/analysis/testdata/src/simdet/sched"),
		"./testdata/src/simdet/sched")
}

// TestSuiteCleanOnTree is the live gate: the production suite must
// report zero findings on the whole module (same check CI runs via
// cmd/latsimvet).
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	diags, err := Run("", All(), "latsim/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestWantParsing pins the expectation-comment grammar.
func TestWantParsing(t *testing.T) {
	lit, rest, err := scanString("`a.b` \"c\\\"d\"")
	if err != nil || lit != "a.b" || strings.TrimSpace(rest) != "\"c\\\"d\"" {
		t.Fatalf("raw scan: %q %q %v", lit, rest, err)
	}
	lit, rest, err = scanString(strings.TrimSpace(rest))
	if err != nil || lit != `c"d` || rest != "" {
		t.Fatalf("quoted scan: %q %q %v", lit, rest, err)
	}
}
