package analysis

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// runGolden checks one analyzer against one fixture package: every
// `// want` comment must be matched by a diagnostic and vice versa.
func runGolden(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	problems, err := CheckExpectations("", []*Analyzer{a}, pattern)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestPoolsafetyGolden(t *testing.T) {
	runGolden(t, NewPoolsafety(), "./testdata/src/poolsafety/a")
}

func TestNilsafeGolden(t *testing.T) {
	runGolden(t, NewNilsafe(
		"latsim/internal/analysis/testdata/src/nilsafe/hooks.Recorder",
		"latsim/internal/analysis/testdata/src/nilsafe/hooks.Tracer",
	), "./testdata/src/nilsafe/hooks")
}

func TestSimdetGolden(t *testing.T) {
	runGolden(t, NewSimdet("latsim/internal/analysis/testdata/src/simdet/sched"),
		"./testdata/src/simdet/sched")
}

// TestPartitionGolden exercises all three partition rules. The fixture
// spans two packages: the helper's global write reaches the checked
// package only through helper's exported FnEffects fact, so a matched
// want on the call site doubles as the facts export/import round trip
// across a package boundary.
func TestPartitionGolden(t *testing.T) {
	runGolden(t, NewPartition("latsim/internal/analysis/testdata/src/partition/node"),
		"./testdata/src/partition/node")
}

// TestPartitionEmptyMarker pins the marker grammar: a suppression with
// no reason is itself a diagnostic and suppresses nothing. (Direct
// assertions, not want comments — the marker's own line cannot also
// carry an expectation comment.)
func TestPartitionEmptyMarker(t *testing.T) {
	diags, err := Run("", []*Analyzer{NewPartition("latsim/internal/analysis/testdata/src/partition/empty")},
		"./testdata/src/partition/empty")
	if err != nil {
		t.Fatal(err)
	}
	var gotEmpty, gotVar bool
	for _, d := range diags {
		if strings.Contains(d.Message, "marker requires a reason") {
			gotEmpty = true
		}
		if strings.Contains(d.Message, "package-level var counter") {
			gotVar = true
		}
	}
	if !gotEmpty || !gotVar {
		t.Fatalf("want an empty-marker diagnostic and an unsuppressed var diagnostic, got %v", diags)
	}
}

func TestHookpureGolden(t *testing.T) {
	runGolden(t, NewHookpure("latsim/internal/analysis/testdata/src/hookpure/hooks.Recorder"),
		"./testdata/src/hookpure/hooks")
}

// TestSchemaverRegression drives the full fingerprint workflow: capture
// a golden from variant a, verify a is clean against it, then verify
// variant b — the same version constant over a renamed serialized field
// — is caught, while its exempt-field change contributes nothing.
func TestSchemaverRegression(t *testing.T) {
	anchors := func(variant string) []SchemaAnchor {
		pkg := "latsim/internal/analysis/testdata/src/schemaver/" + variant
		return []SchemaAnchor{{
			Pkg:   pkg,
			Const: "SchemaVersion",
			Key:   "store.SchemaVersion",
			Roots: []string{pkg + ".Doc"},
		}}
	}
	capture := map[string]SchemaRecord{}
	diags, err := Run("", []*Analyzer{NewSchemaverConfig(anchors("a"), SchemaGolden{}, capture)},
		"./testdata/src/schemaver/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("capture run reported: %v", diags)
	}
	rec, ok := capture["store.SchemaVersion"]
	if !ok || rec.Version != 3 || rec.Fingerprint == "" {
		t.Fatalf("capture = %+v", capture)
	}
	golden := SchemaGolden{Anchors: capture}

	diags, err = Run("", []*Analyzer{NewSchemaverConfig(anchors("a"), golden, nil)},
		"./testdata/src/schemaver/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("unchanged shape must be clean against its own golden, got %v", diags)
	}

	runGolden(t, NewSchemaverConfig(anchors("b"), golden, nil), "./testdata/src/schemaver/b")
}

// TestFactsDocRoundTrip pins the .vetx document encoding: object and
// package facts of several analyzers survive serialization with their
// analyzer namespaces and origin packages intact.
func TestFactsDocRoundTrip(t *testing.T) {
	pf := newPkgFacts()
	eff := &FnEffects{
		Allocs:       []EffectSite{{Pos: "x.go:3", What: "append"}},
		MutRecv:      true,
		EscapeParams: []int{1},
	}
	if err := pf.set("hookpure", "Recorder.Tick", eff); err != nil {
		t.Fatal(err)
	}
	shapes := &SchemaShapes{Types: map[string]TypeShape{
		"Doc": {Display: "store.Doc", Fields: []FieldShape{{Name: "ID", Type: "int"}}},
	}}
	if err := pf.set("schemaver", "", shapes); err != nil {
		t.Fatal(err)
	}
	doc := newFactsDoc()
	doc.Packages["latsim/internal/obs"] = pf

	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeFactsDoc(data)
	if err != nil {
		t.Fatal(err)
	}
	var gotEff FnEffects
	if !got.Packages["latsim/internal/obs"].get("hookpure", "Recorder.Tick", &gotEff) {
		t.Fatal("object fact lost in round trip")
	}
	if !reflect.DeepEqual(&gotEff, eff) {
		t.Fatalf("object fact round trip: got %+v want %+v", gotEff, *eff)
	}
	var gotShapes SchemaShapes
	if !got.Packages["latsim/internal/obs"].get("schemaver", "", &gotShapes) {
		t.Fatal("package fact lost in round trip")
	}
	if !reflect.DeepEqual(&gotShapes, shapes) {
		t.Fatalf("package fact round trip: got %+v want %+v", gotShapes, *shapes)
	}
	// An empty document must decode, and a wrong schema must not.
	if _, err := decodeFactsDoc(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := decodeFactsDoc([]byte(`{"schema":999}`)); err == nil {
		t.Fatal("wrong-schema document decoded silently")
	}
}

// TestRunnerCache verifies the per-package result cache: a second run
// over unchanged sources serves every package from the sidecar files
// and reproduces the first run's diagnostics exactly.
func TestRunnerCache(t *testing.T) {
	r := &Runner{
		Analyzers: []*Analyzer{NewPartition("latsim/internal/analysis/testdata/src/partition/node")},
		CacheDir:  t.TempDir(),
		Salt:      "test",
	}
	cold, coldStats, err := r.Run("./testdata/src/partition/node")
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Analyzed != coldStats.Packages || coldStats.Cached != 0 {
		t.Fatalf("cold run stats = %+v", coldStats)
	}
	warm, warmStats, err := r.Run("./testdata/src/partition/node")
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Cached != warmStats.Packages || warmStats.Analyzed != 0 {
		t.Fatalf("warm run stats = %+v", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached diagnostics differ:\ncold: %v\nwarm: %v", cold, warm)
	}
	if len(cold) == 0 {
		t.Fatal("fixture should produce diagnostics")
	}
	// A different salt (a rebuilt tool) must invalidate everything.
	r.Salt = "rebuilt"
	_, saltStats, err := r.Run("./testdata/src/partition/node")
	if err != nil {
		t.Fatal(err)
	}
	if saltStats.Cached != 0 {
		t.Fatalf("salted run stats = %+v", saltStats)
	}
}

// TestSuiteCleanOnTree is the live gate: the production suite must
// report zero findings on the whole module (same check CI runs via
// cmd/latsimvet).
func TestSuiteCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	diags, err := Run("", All(), "latsim/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestWantParsing pins the expectation-comment grammar.
func TestWantParsing(t *testing.T) {
	lit, rest, err := scanString("`a.b` \"c\\\"d\"")
	if err != nil || lit != "a.b" || strings.TrimSpace(rest) != "\"c\\\"d\"" {
		t.Fatalf("raw scan: %q %q %v", lit, rest, err)
	}
	lit, rest, err = scanString(strings.TrimSpace(rest))
	if err != nil || lit != `c"d` || rest != "" {
		t.Fatalf("quoted scan: %q %q %v", lit, rest, err)
	}
}
