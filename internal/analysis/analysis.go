// Package analysis is the repo's custom static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// driver model plus three codebase-specific analyzers that enforce the
// correctness contracts the simulator's performance work depends on:
//
//   - poolsafety: no use of a sim.Pool-managed object after Put, no
//     double-Put, no storing a recycled pointer somewhere it outlives
//     the event that freed it.
//   - nilsafe: every exported method on the nil-guarded hook types
//     (obs.Recorder, span.Tracer, span.Span, check.Checker) checks its
//     receiver for nil before touching any field — the mechanical form
//     of the DESIGN.md §4b zero-perturbation contract.
//   - simdet: the event-scheduled packages (internal/sim, internal/memsys,
//     internal/cpu, internal/msync, internal/check) must stay
//     deterministic: no time.Now, no global math/rand, and no ranging
//     over a map unless the loop body is order-insensitive or the site
//     carries an explicit //simdet:unordered justification.
//
// The framework mirrors the x/tools API surface (Analyzer, Pass,
// Diagnostic) on purpose: the module is built hermetically with no
// third-party dependencies, so the driver loads packages itself with
// `go list -export` and the standard library's gc export-data importer
// instead of go/packages. Should the real x/tools dependency ever become
// available, the analyzers port over with trivial changes.
//
// Run the suite standalone via `go run ./cmd/latsimvet ./...` or through
// the toolchain via `go vet -vettool=$(which latsimvet) ./...`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass. It mirrors
// x/tools/go/analysis.Analyzer: Run is invoked once per loaded package
// with a fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -NAME=0 flags.
	Name string
	// Doc is the analyzer's one-paragraph description.
	Doc string
	// Run reports diagnostics through the Pass. A non-nil error aborts
	// the whole run (reserved for internal failures, not findings).
	Run func(*Pass) error
	// FactTypes lists prototype values of the Fact types this analyzer
	// exports and imports. An analyzer with no FactTypes is purely
	// intraprocedural; the driver only serializes facts for analyzers
	// that declare them.
	FactTypes []Fact
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	env   *factEnv
}

// Diagnostic is one finding, positioned in the file set it was found in.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }
