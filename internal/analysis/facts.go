package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
)

// A Fact is a typed, serializable piece of analysis knowledge attached
// to a package-level object or to a package as a whole. Facts are the
// interprocedural backbone of the suite: an analyzer exports facts while
// analyzing a package, the driver serializes them to a sidecar keyed on
// the package's export-data hash, and every dependent package's pass
// imports them — mirroring golang.org/x/tools/go/analysis facts, but
// JSON-encoded so the stdlib-only driver (and the `go vet` unitchecker
// protocol's .vetx files) can carry them.
//
// Implementations must be pointer-to-struct types with exported,
// JSON-round-trippable fields, registered via Analyzer.FactTypes.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// factKey names an object fact's target within its package: "Name" for
// package-level functions, variables and types, and "Type.Method" for
// methods (pointer and value receivers share the key space; Go forbids
// both declaring the same name).
func factKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false // method on an unnamed type (interface literal)
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "", false // local object: facts attach to package-level API only
	}
	return obj.Name(), true
}

// factType returns the registered name of a fact's dynamic type.
func factType(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// pkgFacts holds every fact one package exports, keyed by analyzer then
// object key (the empty key holds the package fact). Values stay as raw
// JSON until an importer asks for them with a concrete type.
type pkgFacts struct {
	// Analyzers maps analyzer name -> object key -> encoded fact.
	Analyzers map[string]map[string]json.RawMessage `json:"analyzers,omitempty"`
}

func newPkgFacts() *pkgFacts {
	return &pkgFacts{Analyzers: map[string]map[string]json.RawMessage{}}
}

func (pf *pkgFacts) set(analyzer, key string, f Fact) error {
	enc, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("analysis: encoding %s fact %s: %v", analyzer, factType(f), err)
	}
	m := pf.Analyzers[analyzer]
	if m == nil {
		m = map[string]json.RawMessage{}
		pf.Analyzers[analyzer] = m
	}
	m[key] = enc
	return nil
}

func (pf *pkgFacts) get(analyzer, key string, into Fact) bool {
	if pf == nil {
		return false
	}
	raw, ok := pf.Analyzers[analyzer][key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, into) == nil
}

// encode serializes the fact set deterministically (sorted keys, one
// canonical JSON document) so identical analyses produce identical
// sidecar bytes.
func (pf *pkgFacts) encode() ([]byte, error) {
	return json.MarshalIndent(pf, "", "\t")
}

func decodePkgFacts(data []byte) (*pkgFacts, error) {
	pf := newPkgFacts()
	if len(data) == 0 {
		return pf, nil
	}
	if err := json.Unmarshal(data, pf); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %v", err)
	}
	if pf.Analyzers == nil {
		pf.Analyzers = map[string]map[string]json.RawMessage{}
	}
	return pf, nil
}

// factEnv is the driver-side view of all facts available to one pass:
// the facts imported from dependency packages plus the facts the current
// package is exporting.
type factEnv struct {
	imported map[string]*pkgFacts // package path -> facts
	out      *pkgFacts            // facts exported by the current package
}

func newFactEnv() *factEnv {
	return &factEnv{imported: map[string]*pkgFacts{}, out: newPkgFacts()}
}

// ExportObjectFact attaches a fact to a package-level object of the
// package under analysis. Facts on local objects or objects of other
// packages are silently dropped (mirroring the x/tools contract that
// facts flow strictly downstream).
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.env == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key, ok := factKey(obj)
	if !ok {
		return
	}
	if err := p.env.out.set(p.Analyzer.Name, key, f); err != nil {
		panic(err) // fact types are plain structs; encoding cannot fail
	}
}

// ImportObjectFact copies the fact of the given type attached to obj
// into *f, reporting whether one was found. The object may belong to the
// package under analysis (facts exported earlier in this pass) or to any
// dependency whose facts the driver loaded.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.env == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := factKey(obj)
	if !ok {
		return false
	}
	if obj.Pkg() == p.Pkg {
		return p.env.out.get(p.Analyzer.Name, key, f)
	}
	return p.env.imported[basePkgPath(obj.Pkg().Path())].get(p.Analyzer.Name, key, f)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.env == nil {
		return
	}
	if err := p.env.out.set(p.Analyzer.Name, "", f); err != nil {
		panic(err)
	}
}

// ImportPackageFact copies the package fact of pkgPath (a dependency, or
// the package under analysis) into *f, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkgPath string, f Fact) bool {
	if p.env == nil {
		return false
	}
	if basePkgPath(pkgPath) == basePkgPath(p.Pkg.Path()) {
		return p.env.out.get(p.Analyzer.Name, "", f)
	}
	return p.env.imported[basePkgPath(pkgPath)].get(p.Analyzer.Name, "", f)
}
