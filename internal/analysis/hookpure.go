package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultHookpureTypes are the observability hook types bound by the
// DESIGN.md §4b zero-perturbation contract: the simulator calls their
// methods on the hot path, and an implementation that allocates,
// schedules kernel work or mutates model state perturbs the very run it
// observes.
var DefaultHookpureTypes = []string{
	"latsim/internal/obs.Recorder",
	"latsim/internal/obs/span.Tracer",
	"latsim/internal/obs/span.Span",
	"latsim/internal/check.Checker",
}

// AllocMarker justifies an allocation the contract tolerates — an
// amortized growth path that stabilizes at a high-water mark, or a
// failure path that ends the run: `//hookpure:alloc <reason>`. The
// suppression applies where the allocation happens, so one annotation
// in a helper covers every hook that calls it.
const AllocMarker = "//hookpure:alloc"

// ColdMarker exempts a whole method from the hot-path rules — report
// rendering, constructors-by-another-name: `//hookpure:cold <reason>`
// in the method's doc comment.
const ColdMarker = "//hookpure:cold"

// NewHookpure returns the hookpure analyzer for the given fully
// qualified hook type names (DefaultHookpureTypes when empty). Every
// method on a hook type — and, through exported FnEffects facts,
// everything it transitively calls in any in-module package — must not:
//
//   - allocate (make/new/append, escaping composite literals, string
//     building, fmt, closures) unless the site carries //hookpure:alloc
//     with a reason;
//   - schedule or perturb kernel work (sim.Kernel scheduling methods,
//     sim.Resource acquisition);
//   - write simulation-model state (anything reached through a pointer
//     into a model package's types) or package-level variables.
//
// Methods marked //hookpure:cold <reason> are off the hot path and
// skipped entirely. Test files are exempt.
func NewHookpure(typeNames ...string) *Analyzer {
	if len(typeNames) == 0 {
		typeNames = DefaultHookpureTypes
	}
	hook := map[string]bool{}
	for _, t := range typeNames {
		hook[t] = true
	}
	a := &Analyzer{
		Name:      "hookpure",
		Doc:       "enforce the zero-perturbation contract: hook methods must not allocate, schedule kernel work or mutate simulation state",
		FactTypes: []Fact{(*FnEffects)(nil)},
	}
	a.Run = func(pass *Pass) error {
		allocMarks := reportEmptyMarkers(pass, AllocMarker)
		coldMarks := reportEmptyMarkers(pass, ColdMarker)
		// Every package exports effects facts so hook packages can see
		// through cross-package calls (sim.Pool.Get, kernel methods, ...).
		ec := newEffectsComputer(pass, DefaultModelPackages, allocMarks)
		ec.exportAll()
		for _, file := range pass.Files {
			if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || fn.Body == nil {
					continue
				}
				typeName := hookReceiverType(pass, fn)
				if !hook[typeName] {
					continue
				}
				if suppressed(coldMarks, pass.Fset, fn.Pos()) {
					continue // declared off the hot path, with a reason
				}
				obj := pass.Info.Defs[fn.Name]
				if obj == nil {
					continue
				}
				reportImpurity(pass, typeName, fn, ec.of(obj))
			}
		}
		return nil
	}
	return a
}

// hookReceiverType names a method's receiver type as "pkgpath.Type",
// accepting pointer and value receivers ("" when unresolvable).
func hookReceiverType(pass *Pass, fn *ast.FuncDecl) string {
	if len(fn.Recv.List) != 1 {
		return ""
	}
	t := pass.TypeOf(fn.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return basePkgPath(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
}

// reportImpurity turns a hook method's computed effects into
// diagnostics, one per recorded site.
func reportImpurity(pass *Pass, typeName string, fn *ast.FuncDecl, eff *effects) {
	short := typeName[strings.LastIndex(typeName, "/")+1:]
	method := "(" + short + ")." + fn.Name.Name
	for _, s := range eff.allocs {
		pass.Reportf(s.pos,
			"hook method %s allocates on the hot path: %s; the zero-perturbation contract forbids this — annotate %s <why> if amortized, or %s on the method if it is cold",
			method, s.what, AllocMarker, ColdMarker)
	}
	for _, s := range eff.schedules {
		pass.Reportf(s.pos,
			"hook method %s schedules kernel work: %s; hooks must never perturb the event order", method, s.what)
	}
	for _, s := range eff.modelWrites {
		pass.Reportf(s.pos,
			"hook method %s mutates simulation state: %s; hooks observe the run, they must not change it", method, s.what)
	}
	for _, s := range eff.globalWrites {
		pass.Reportf(s.pos,
			"hook method %s writes package-level state: %s; per-run observations belong on the hook value", method, s.what)
	}
}
