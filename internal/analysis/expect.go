package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// expectation is one `// want "regex"` comment parsed from a golden
// fixture, in the style of x/tools analysistest: the comment's line must
// receive a diagnostic whose message matches the regex.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// CheckExpectations runs the analyzers over the packages matched by
// patterns (resolved from dir), compares the diagnostics against the
// fixtures' `// want` comments, and returns one error string per
// mismatch: a diagnostic with no matching want, or a want with no
// matching diagnostic. An empty result means the fixture is golden.
//
// Dependencies of the matched packages are analyzed for facts (so
// multi-package fixtures exercise the interprocedural path exactly like
// the production driver) but contribute neither wants nor diagnostics;
// list every package whose findings matter as a pattern.
func CheckExpectations(dir string, analyzers []*Analyzer, patterns ...string) ([]string, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var problems []string
	var wants []*expectation
	r := &Runner{Dir: dir, Analyzers: analyzers}
	diags, _, _, err := r.runLoaded(pkgs)
	if err != nil {
		return nil, err
	}
	for _, pkg := range pkgs {
		if pkg.Dep {
			continue
		}
		for _, file := range pkg.Files {
			ws, err := parseWants(pkg.Fset, file)
			if err != nil {
				return nil, err
			}
			wants = append(wants, ws...)
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.met {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw))
		}
	}
	return problems, nil
}

// parseWants extracts `// want "re1" "re2"` expectations. Each quoted
// string is a regexp that must match a diagnostic on the comment's line.
func parseWants(fset *token.FileSet, file *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
			for rest != "" {
				lit, tail, err := scanString(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
				}
				wants = append(wants, &expectation{
					file: pos.Filename,
					line: pos.Line,
					re:   re,
					raw:  lit,
				})
				rest = strings.TrimSpace(tail)
			}
		}
	}
	return wants, nil
}

// scanString consumes one leading Go string literal (double- or
// back-quoted) and returns its value plus the remainder.
func scanString(s string) (string, string, error) {
	if s == "" {
		return "", "", fmt.Errorf("empty expectation")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				val, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", err
				}
				return val, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string")
	}
	return "", "", fmt.Errorf("expectation must be a quoted regexp, got %q", s)
}
